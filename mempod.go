package mempod

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/addr"
	"repro/internal/cameo"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hma"
	"repro/internal/mech"
	"repro/internal/memsys"
	"repro/internal/migrant"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Mechanism selects the memory-management scheme for a run.
type Mechanism string

// The mechanisms and reference configurations of the paper's evaluation.
const (
	MechMemPod  Mechanism = "MemPod"   // the paper's contribution (§5)
	MechHMA     Mechanism = "HMA"      // OS-driven interval migration baseline
	MechTHM     Mechanism = "THM"      // segment/competing-counter baseline
	MechCAMEO   Mechanism = "CAMEO"    // line-granularity event-swap baseline
	MechMigrant Mechanism = "Migrant"  // OS/VM-assisted fault-threshold migration
	MechTLM     Mechanism = "TLM"      // two-level memory, no migration
	MechHBMOnly Mechanism = "HBM-only" // 9 GB of stacked memory, no DDR
	MechDDROnly Mechanism = "DDR-only" // 9 GB of off-chip memory, no HBM
)

// Mechanisms lists every supported Mechanism value.
func Mechanisms() []Mechanism {
	return []Mechanism{MechMemPod, MechHMA, MechTHM, MechCAMEO, MechMigrant, MechTLM, MechHBMOnly, MechDDROnly}
}

// Specs lists the memory-spec preset names accepted by Options.FastSpec
// and Options.SlowSpec (aliases like "DDR4" and "NVM" also resolve; see
// internal/dram.Preset).
func Specs() []string { return dram.PresetNames() }

// CheckSpec validates a memory-spec preset name or alias against the
// registry; the error for an unknown name lists the valid options.
func CheckSpec(name string) error {
	_, err := dram.Preset(name)
	return err
}

// Duration re-exports the simulator's femtosecond time unit for options.
type Duration = clock.Duration

// Time-unit constants for building Options durations.
const (
	Nanosecond  = clock.Nanosecond
	Microsecond = clock.Microsecond
	Millisecond = clock.Millisecond
)

// MemPodOptions tunes the MemPod mechanism (§6.3.1 design space).
// Zero values select the paper's design point.
type MemPodOptions struct {
	Interval    Duration // epoch length (default 50 µs)
	Counters    int      // MEA entries per pod (default 64)
	CounterBits int      // saturating counter width (default 2)
	CacheBytes  int      // remap-cache capacity; 0 disables the cache model
	// UseFullCounters swaps the MEA unit for exact per-page counters —
	// the tracking ablation, not a buildable design point.
	UseFullCounters bool
}

// MigrantOptions tunes the OS-assisted Migrant mechanism. Zero values
// select its defaults (100 µs epoch, threshold 8, 2 µs fault cost).
type MigrantOptions struct {
	Epoch        Duration // A-bit harvest epoch
	HotThreshold int      // faults-in when an epoch's touch count crosses this
	FaultCost    Duration // minor-fault handling cost charged before the copy
}

// HMAOptions tunes the HMA baseline. Zero values select the paper's
// parameters (100 ms interval, 7 ms sort), which require correspondingly
// long traces; see exp.Config for the scaled experiment defaults.
type HMAOptions struct {
	Interval      Duration
	SortStall     Duration
	MaxMigrations int
	CacheBytes    int
}

// Options configures one simulation run.
type Options struct {
	// Mechanism picks the management scheme (default MechMemPod).
	Mechanism Mechanism
	// Requests is the trace length (default 500 000).
	Requests int
	// Seed makes the run reproducible (default 42).
	Seed int64
	// FutureMemories selects the §6.3.4 technology point: 4 GHz HBM and
	// DDR4-2400 instead of the baseline parts.
	FutureMemories bool
	// FastSpec/SlowSpec name dram preset specs (see Specs()) for the two
	// memory levels; empty selects the paper pair (HBM + DDR4-1600), or
	// the future pair when FutureMemories is set. Naming a spec together
	// with FutureMemories is an error.
	FastSpec string
	SlowSpec string
	// Window caps outstanding requests (default sim.DefaultWindow;
	// negative = unlimited).
	Window int
	// PodShards selects the pod-parallel simulation path for mechanisms
	// that support it (MemPod): 0 is auto (one worker per spare CPU, off
	// below two), 1 or negative forces the serial path, >= 2 forces that
	// worker count (capped at the pod count). Results are bit-identical
	// for every value.
	PodShards int
	// Results, when non-nil, memoizes the run: if the cache holds this
	// exact cell (same mechanism config, specs, layout, window and trace
	// identity — see ResultCache), the stored result is returned without
	// simulating, and fresh results are published for later runs. Custom
	// workload definitions (RunCustom) are never cached — their names do
	// not pin their content.
	Results *ResultCache

	MemPod  MemPodOptions
	HMA     HMAOptions
	Migrant MigrantOptions
}

// Result is the outcome of a run. AMMAT() reports the paper's headline
// metric in nanoseconds.
type Result = stats.Result

// Workloads returns the names of the paper's 27 workloads: 15 homogeneous
// benchmark names plus mix1..mix12 (Table 3).
func Workloads() []string {
	var out []string
	for _, w := range workload.All() {
		out = append(out, w.Name)
	}
	return out
}

// withDefaults fills the zero-value option defaults shared by every entry
// point.
func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		o.Requests = 500_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Mechanism == "" {
		o.Mechanism = MechMemPod
	}
	return o
}

// specs resolves the run's memory specs: named presets when given,
// otherwise the paper pair or the §6.3.4 future pair.
func (o Options) specs() (fast, slow dram.Spec, err error) {
	if o.FastSpec != "" || o.SlowSpec != "" {
		if o.FutureMemories {
			return fast, slow, fmt.Errorf("mempod: FutureMemories cannot be combined with named specs")
		}
		fastName, slowName := o.FastSpec, o.SlowSpec
		if fastName == "" {
			fastName = "HBM"
		}
		if slowName == "" {
			slowName = "DDR4-1600"
		}
		if fast, err = dram.Preset(fastName); err != nil {
			return fast, slow, err
		}
		slow, err = dram.Preset(slowName)
		return fast, slow, err
	}
	if o.FutureMemories {
		return dram.HBMOverclocked(), dram.DDR4_2400(), nil
	}
	return dram.HBM(), dram.DDR4_1600(), nil
}

// layout returns the address layout the mechanism runs on: the standard
// two-level geometry, or a single-level 9 GB geometry for the static
// one-memory baselines.
func (o Options) layout() addr.Layout {
	switch o.Mechanism {
	case MechHBMOnly:
		return addr.Layout{FastBytes: 9 << 30, FastChannels: 8, NumPods: 4}
	case MechDDROnly:
		return addr.Layout{SlowBytes: 9 << 30, SlowChannels: 4, NumPods: 4}
	}
	return addr.DefaultLayout()
}

// runStream builds the memory system and mechanism selected by o and
// drives the stream through it. Every entry point — generated workloads,
// custom definitions, recorded trace replays — funnels through here, via
// cachedRun when the run is memoizable.
func runStream(name string, s trace.Stream, o Options) (Result, error) {
	fast, slow, err := o.specs()
	if err != nil {
		return Result{}, err
	}
	sys, err := memsys.New(o.layout(), fast, slow)
	if err != nil {
		return Result{}, err
	}
	backend := mech.NewBackend(sys)
	m, err := buildMechanism(o, backend)
	if err != nil {
		return Result{}, err
	}
	// Recycle the mechanism's pooled tables once the run's stats are out,
	// so back-to-back runs (mempodsim -compare) reuse allocations.
	defer mech.Release(m)
	engine := sim.New(backend, m)
	engine.Window = o.Window
	engine.Shards = o.PodShards
	if ss, ok := s.(*trace.SnapshotStream); ok {
		// Snapshot replays (RunTrace, -compare) take the engine's batched
		// path; binding the snapshot's predecode plane for this layout lets
		// the mechanism skip per-request address decomposition too.
		ss.BindPlane(ss.Snapshot().Plane(&backend.Geom))
	}
	return engine.Run(name, s)
}

// Run simulates one workload under one mechanism and returns its metrics.
// The workload is a benchmark name ("mcf"), a mix ("mix5"), per Workloads.
func Run(workloadName string, o Options) (Result, error) {
	w, err := lookupWorkload(workloadName)
	if err != nil {
		return Result{}, err
	}
	o = o.withDefaults()
	// Generated runs are keyed symbolically — the (name, length, seed)
	// recipe pins the exact request sequence — so a cache hit skips trace
	// generation too, and the stream is only built on a miss.
	id := cellIdentity{workload: w.Name, requests: o.Requests, seed: o.Seed, cacheable: true}
	return cachedRun(o, id, func() (Result, error) {
		s, err := w.Stream(o.Requests, o.Seed)
		if err != nil {
			return Result{}, err
		}
		return runStream(w.Name, s, o)
	})
}

// RunCustom is Run for a user-defined workload: def is the JSON custom
// workload definition documented in internal/workload (profiles plus an
// 8-core assignment; built-in benchmark names may be referenced).
func RunCustom(def io.Reader, o Options) (Result, error) {
	w, err := workload.LoadCustom(def)
	if err != nil {
		return Result{}, err
	}
	o = o.withDefaults()
	s, err := w.Stream(o.Requests, o.Seed)
	if err != nil {
		return Result{}, err
	}
	return runStream(w.Name, s, o)
}

// Trace is a recorded workload trace in the packed snapshot form: generate
// (or load) it once, then replay it under any number of mechanisms or
// option sets. Replays are bit-identical to the recorded generation and
// safe to run concurrently — each RunTrace takes its own cursor over the
// immutable snapshot.
type Trace struct {
	name string
	snap *trace.Snapshot
}

// RecordTrace generates workloadName's trace with the given length and
// seed (zero values select the Run defaults) and records it as a packed
// snapshot.
func RecordTrace(workloadName string, requests int, seed int64) (*Trace, error) {
	w, err := lookupWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	return recordTrace(w.Name, w, requests, seed)
}

// RecordCustomTrace is RecordTrace for a JSON custom workload definition.
func RecordCustomTrace(def io.Reader, requests int, seed int64) (*Trace, error) {
	w, err := workload.LoadCustom(def)
	if err != nil {
		return nil, err
	}
	return recordTrace(w.Name, w, requests, seed)
}

// streamer abstracts the two workload kinds (built-in and custom) for
// recording; both expose the same Stream method.
type streamer interface {
	Stream(n int, seed int64) (trace.Stream, error)
}

func recordTrace(name string, w streamer, requests int, seed int64) (*Trace, error) {
	if requests <= 0 {
		requests = 500_000
	}
	if seed == 0 {
		seed = 42
	}
	s, err := w.Stream(requests, seed)
	if err != nil {
		return nil, err
	}
	return &Trace{name: name, snap: trace.Record(s, requests)}, nil
}

// Name returns the workload name the trace was recorded from.
func (t *Trace) Name() string { return t.name }

// Requests returns the number of recorded requests.
func (t *Trace) Requests() int { return t.snap.Len() }

// Size returns the packed in-memory size of the trace in bytes.
func (t *Trace) Size() int { return t.snap.Size() }

// Save persists the trace in the packed snapshot file format, replayable
// across runs via ReadTrace (cmd/mempodsim's -trace-out/-trace-in).
func (t *Trace) Save(w io.Writer) error {
	return trace.WriteSnapshot(w, t.name, t.snap)
}

// ReadTrace loads a trace saved by Save.
func ReadTrace(r io.Reader) (*Trace, error) {
	snap, name, err := trace.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Trace{name: name, snap: snap}, nil
}

// OpenTrace opens a trace snapshot file saved by Save, memory-mapping
// its columns where the platform supports it — replay then reads the
// file's bytes in place, and derived columns persist as sidecar files
// next to the snapshot so later opens skip re-decoding. Platforms (or
// builds) without mmap support fall back to the copying reader, so the
// call works everywhere. Close releases the mapping.
func OpenTrace(path string) (*Trace, error) {
	snap, name, err := trace.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	return &Trace{name: name, snap: snap}, nil
}

// Mapped reports whether the trace replays directly from a file mapping
// (OpenTrace on an mmap-capable platform) rather than heap buffers.
func (t *Trace) Mapped() bool { return t.snap.Mapped() }

// Close releases the trace's snapshot — for a mapped trace (OpenTrace)
// it unmaps the file. The trace and any replay derived from it must not
// be used afterwards; Close is optional for heap traces, which the
// garbage collector reclaims.
func (t *Trace) Close() {
	if t.snap != nil {
		t.snap.Release()
		t.snap = nil
	}
}

// RunTrace replays a recorded trace under the mechanism selected by o.
// o.Requests and o.Seed are ignored — the trace already fixes the request
// sequence. With o.Results set, the trace is identified by its content
// fingerprint, so the same trace reloaded from a file in another process
// still hits its cached cells.
func RunTrace(t *Trace, o Options) (Result, error) {
	o = o.withDefaults()
	return cachedRun(o, traceIdentity(t, o), func() (Result, error) {
		return runStream(t.name, t.snap.Stream(), o)
	})
}

// mechConfig resolves the options into the mechanism's tag and fully
// populated config struct, without constructing anything. The (tag, cfg)
// pair is the mechanism's canonical identity: it parameterizes both
// buildMechanism and the result-cache key, so a run and its cache entry
// can never disagree about what was simulated. Static mechanisms have a
// nil config — the layout distinguishes them.
func (o Options) mechConfig() (tag string, cfg any, err error) {
	switch o.Mechanism {
	case MechMemPod:
		c := core.DefaultConfig()
		if o.MemPod.Interval > 0 {
			c.Interval = o.MemPod.Interval
		}
		if o.MemPod.Counters > 0 {
			c.Counters = o.MemPod.Counters
		}
		if o.MemPod.CounterBits > 0 {
			c.CounterBits = o.MemPod.CounterBits
		}
		c.CacheBytes = o.MemPod.CacheBytes
		c.UseFullCounters = o.MemPod.UseFullCounters
		return "mempod", c, nil
	case MechHMA:
		c := hma.DefaultConfig()
		if o.HMA.Interval > 0 {
			c.Interval = o.HMA.Interval
		}
		if o.HMA.SortStall > 0 {
			c.SortStall = o.HMA.SortStall
		}
		if o.HMA.MaxMigrations > 0 {
			c.MaxMigrations = o.HMA.MaxMigrations
		}
		c.CacheBytes = o.HMA.CacheBytes
		return "hma", c, nil
	case MechTHM:
		return "thm", thm.DefaultConfig(), nil
	case MechCAMEO:
		return "cameo", cameo.DefaultConfig(), nil
	case MechMigrant:
		c := migrant.DefaultConfig()
		if o.Migrant.Epoch > 0 {
			c.Epoch = o.Migrant.Epoch
		}
		if o.Migrant.HotThreshold > 0 {
			c.HotThreshold = o.Migrant.HotThreshold
		}
		if o.Migrant.FaultCost > 0 {
			c.FaultCost = o.Migrant.FaultCost
		}
		return "migrant", c, nil
	case MechTLM, MechHBMOnly, MechDDROnly:
		return "static", nil, nil
	default:
		return "", nil, fmt.Errorf("mempod: unknown mechanism %q (valid: %s)",
			o.Mechanism, mechanismNames())
	}
}

func buildMechanism(o Options, backend *mech.Backend) (mech.Mechanism, error) {
	_, cfg, err := o.mechConfig()
	if err != nil {
		return nil, err
	}
	switch c := cfg.(type) {
	case core.Config:
		return core.New(c, backend)
	case hma.Config:
		return hma.New(c, backend)
	case thm.Config:
		return thm.New(c, backend)
	case cameo.Config:
		return cameo.New(c, backend)
	case migrant.Config:
		return migrant.New(c, backend)
	default:
		return mech.NewStatic(string(o.Mechanism), backend), nil
	}
}

// mechanismNames renders the Mechanisms list for error messages.
func mechanismNames() string {
	names := make([]string, len(Mechanisms()))
	for i, m := range Mechanisms() {
		names[i] = string(m)
	}
	return strings.Join(names, ", ")
}

func lookupWorkload(name string) (workload.Workload, error) {
	for _, w := range workload.All() {
		if w.Name == name {
			return w, nil
		}
	}
	return workload.Workload{}, fmt.Errorf("mempod: unknown workload %q (see Workloads())", name)
}
