package mempod

import (
	"fmt"
	"testing"
)

// One benchmark per table and figure of the paper. Each regenerates its
// experiment at Quick scale per iteration, so `go test -bench=.` exercises
// the entire evaluation pipeline; cmd/experiments produces the full-scale
// numbers recorded in EXPERIMENTS.md.

func benchExperiment(b *testing.B, e Experiment) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := RunExperiment(e, Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", e)
		}
	}
}

func BenchmarkFig1MEACounting(b *testing.B)       { benchExperiment(b, Fig1) }
func BenchmarkFig2MEAPrediction(b *testing.B)     { benchExperiment(b, Fig2) }
func BenchmarkFig3Individual(b *testing.B)        { benchExperiment(b, Fig3) }
func BenchmarkTable1Blocks(b *testing.B)          { benchExperiment(b, Table1) }
func BenchmarkTable2Config(b *testing.B)          { benchExperiment(b, Table2) }
func BenchmarkTable3Mixes(b *testing.B)           { benchExperiment(b, Table3) }
func BenchmarkFig6EpochCounterSweep(b *testing.B) { benchExperiment(b, Fig6) }
func BenchmarkFig7CounterWidth(b *testing.B)      { benchExperiment(b, Fig7) }
func BenchmarkFig8Comparison(b *testing.B)        { benchExperiment(b, Fig8) }
func BenchmarkFig9CacheSensitivity(b *testing.B)  { benchExperiment(b, Fig9) }
func BenchmarkFig10Scalability(b *testing.B)      { benchExperiment(b, Fig10) }

// Component benchmarks: simulator throughput per mechanism, in requests
// per op (reported via custom metric ns/request).

func benchMechanism(b *testing.B, m Mechanism) {
	b.Helper()
	const n = 100_000
	for i := 0; i < b.N; i++ {
		o := Options{Mechanism: m, Requests: n, Seed: int64(i + 1)}
		if m == MechHMA {
			o.HMA = HMAOptions{Interval: Millisecond, SortStall: 70 * Microsecond, MaxMigrations: 512}
		}
		res, err := Run("mix5", o)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/request")
}

func BenchmarkMechanismTLM(b *testing.B)    { benchMechanism(b, MechTLM) }
func BenchmarkMechanismMemPod(b *testing.B) { benchMechanism(b, MechMemPod) }
func BenchmarkMechanismHMA(b *testing.B)    { benchMechanism(b, MechHMA) }
func BenchmarkMechanismTHM(b *testing.B)    { benchMechanism(b, MechTHM) }
func BenchmarkMechanismCAMEO(b *testing.B)  { benchMechanism(b, MechCAMEO) }

// Ablation benchmarks for the design choices DESIGN.md calls out: pod
// count (clustering), MEA counter budget and interval length.

func BenchmarkAblationMemPodCounters(b *testing.B) {
	for _, k := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run("mix5", Options{
					Requests: 100_000,
					MemPod:   MemPodOptions{Counters: k},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AMMAT(), "AMMAT-ns")
				b.ReportMetric(float64(res.Mig.PageMigrations), "migrations")
			}
		})
	}
}

func BenchmarkAblationTrackerMEAvsFC(b *testing.B) {
	for _, fc := range []bool{false, true} {
		name := "MEA"
		if fc {
			name = "FullCounters"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run("mix5", Options{
					Requests: 100_000,
					MemPod:   MemPodOptions{UseFullCounters: fc},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AMMAT(), "AMMAT-ns")
			}
		})
	}
}

func BenchmarkAblationMemPodInterval(b *testing.B) {
	for _, us := range []int{25, 50, 200} {
		b.Run(fmt.Sprintf("epoch=%dus", us), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run("mix5", Options{
					Requests: 100_000,
					MemPod:   MemPodOptions{Interval: Duration(us) * Microsecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AMMAT(), "AMMAT-ns")
			}
		})
	}
}
