package mempod_test

import (
	"fmt"

	"repro"
)

// The simplest use: run one workload under MemPod and read the paper's
// headline metric.
func ExampleRun() {
	res, err := mempod.Run("mix5", mempod.Options{
		Mechanism: mempod.MechMemPod,
		Requests:  50_000,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Requests, "requests,", res.Mechanism)
	fmt.Println("AMMAT positive:", res.AMMAT() > 0)
	// Output:
	// 50000 requests, MemPod
	// AMMAT positive: true
}

// Comparing a mechanism against the no-migration baseline.
func ExampleResult_Normalized() {
	base, _ := mempod.Run("cactus", mempod.Options{Mechanism: mempod.MechTLM, Requests: 50_000})
	mp, _ := mempod.Run("cactus", mempod.Options{Mechanism: mempod.MechMemPod, Requests: 50_000})
	fmt.Println("normalized below 2x:", mp.Normalized(base) < 2)
	// Output:
	// normalized below 2x: true
}

// Regenerating one of the paper's tables.
func ExampleRunExperiment() {
	tab, err := mempod.RunExperiment(mempod.Table3, mempod.Quick)
	if err != nil {
		panic(err)
	}
	fmt.Println(tab.ID, "rows:", len(tab.Rows))
	// Output:
	// table3 rows: 12
}
