// Package mempod is a from-scratch Go reproduction of "MemPod: A Clustered
// Architecture for Efficient and Scalable Migration in Flat Address Space
// Multi-level Memories" (Prodromou, Meswani, Jayasena, Loh, Tullsen —
// HPCA 2017).
//
// The package is the public facade over the full simulator:
//
//   - a two-level DRAM memory system (1 GB stacked HBM + 8 GB DDR4-1600)
//     with bank/row-buffer/bus timing (internal/dram, internal/memsys);
//   - the MemPod mechanism itself — pods clustering memory controllers,
//     MEA activity tracking, remap/inverted tables, interval migration
//     (internal/core, internal/mea);
//   - the three baselines the paper compares against: HMA, THM and CAMEO
//     (internal/hma, internal/thm, internal/cameo);
//   - synthetic SPEC CPU2006-like multi-programmed workloads standing in
//     for the paper's Sniper-captured traces (internal/workload);
//   - the complete evaluation: every table and figure of the paper
//     (internal/exp), regenerable via this package, cmd/experiments, or
//     the benchmarks in bench_test.go. Experiment matrices fan their
//     independent simulation cells out to a bounded worker pool
//     (internal/runner); results are deterministic for a fixed Seed
//     regardless of parallelism (see RunOptions.Parallelism).
//
// # Quick start
//
//	res, err := mempod.Run("mix5", mempod.Options{
//		Mechanism: mempod.MechMemPod,
//		Requests:  500_000,
//	})
//	if err != nil { ... }
//	fmt.Printf("AMMAT %.2f ns, moved %d MB\n", res.AMMAT(), res.Mig.BytesMoved>>20)
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for
// the reproduction methodology and results.
package mempod
