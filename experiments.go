package mempod

import (
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/report"
)

// Table is a rendered experiment result: the rows/series of one of the
// paper's tables or figures.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Text and CSV are pre-rendered forms.
	Text string
	CSV  string
}

func fromReport(t *report.Table) *Table {
	return &Table{
		ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows,
		Text: t.String(), CSV: t.CSV(),
	}
}

// ExperimentScale selects how much of the evaluation to run.
type ExperimentScale int

// Experiment scales: Quick runs a representative subset in seconds per
// figure, Full runs the paper's complete workload set (minutes per figure
// on one core).
const (
	Quick ExperimentScale = iota
	Full
)

// Experiment identifies one of the paper's tables or figures.
type Experiment string

// All experiments of the paper's evaluation.
const (
	Fig1  Experiment = "fig1"  // MEA counting accuracy vs FC
	Fig2  Experiment = "fig2"  // MEA vs FC future prediction (averages)
	Fig3  Experiment = "fig3"  // MEA vs FC prediction, selected workloads
	Fig6  Experiment = "fig6"  // epoch x counters design space
	Fig7  Experiment = "fig7"  // counter width sensitivity
	Fig8  Experiment = "fig8"  // mechanism comparison
	Fig9  Experiment = "fig9"  // bookkeeping-cache sensitivity
	Fig10 Experiment = "fig10" // future-technology scalability
	// SpecGrid is this repository's extension beyond the paper: every
	// mechanism (including the OS-assisted Migrant policy) over several
	// memory-spec pairs from the dram preset registry.
	SpecGrid Experiment = "specgrid"
	Table1   Experiment = "table1" // building-block comparison
	Table2   Experiment = "table2" // system configuration
	Table3   Experiment = "table3" // mixed workloads
)

// Experiments lists every regenerable table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{Fig1, Fig2, Fig3, Table1, Table2, Table3, Fig6, Fig7, Fig8, Fig9, Fig10, SpecGrid}
}

// RunOptions tunes how an experiment executes, not what it simulates.
type RunOptions struct {
	// Scale selects Quick or Full evaluation.
	Scale ExperimentScale
	// Parallelism bounds concurrent simulation cells (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for any value: every cell builds
	// its own simulator state and cells are assembled in a fixed order.
	Parallelism int
	// Progress, when non-nil, observes cell completion (done of total).
	Progress func(done, total int)
	// FastSpec/SlowSpec name dram preset specs (see Specs()) for the
	// baseline experiments' memory levels; empty selects the paper pair.
	// Fig10 (defined as the future pair) and SpecGrid (which sweeps its
	// own pairs) ignore them.
	FastSpec string
	SlowSpec string
	// Results, when non-nil, memoizes simulation cells across experiments
	// and processes (see ResultCache). Experiments sharing design points —
	// Fig6 and Fig7 overlap on the paper's chosen configuration, Fig8 and
	// the oracle figures share whole matrices — simulate each distinct
	// cell once per cache, and a persistent cache skips them entirely on
	// the next run. Results are field-identical with or without a cache.
	Results *ResultCache
}

// RunExperiment regenerates one table or figure of the paper at the given
// scale. Sweeps (Fig6, Fig7, Fig9) always run on a representative workload
// subset; Fig1–3, Fig8 and Fig10 use the full 27-workload set at Full
// scale. Simulations fan out to GOMAXPROCS workers; use RunExperimentOpts
// to bound or observe them.
func RunExperiment(e Experiment, scale ExperimentScale) (*Table, error) {
	return RunExperimentOpts(e, RunOptions{Scale: scale})
}

// RunExperimentOpts is RunExperiment with execution options.
func RunExperimentOpts(e Experiment, opts RunOptions) (*Table, error) {
	cfg := expConfig(e, opts.Scale)
	cfg.Parallelism = opts.Parallelism
	cfg.Progress = opts.Progress
	if opts.Results != nil {
		cfg.Results = opts.Results.c
	}
	if opts.FastSpec != "" || opts.SlowSpec != "" {
		if _, err := dram.Preset(firstNonEmpty(opts.FastSpec, "HBM")); err != nil {
			return nil, err
		}
		if _, err := dram.Preset(firstNonEmpty(opts.SlowSpec, "DDR4-1600")); err != nil {
			return nil, err
		}
		cfg.FastSpec, cfg.SlowSpec = opts.FastSpec, opts.SlowSpec
	}
	known := false
	for _, k := range Experiments() {
		if k == e {
			known = true
			break
		}
	}
	if !known {
		return nil, errUnknownExperiment(e)
	}
	t, err := cfg.Experiment(string(e))
	if err != nil {
		return nil, err
	}
	return fromReport(t), nil
}

// SweepWorkloads is the representative subset the design-space sweeps run
// on (one per behaviour class: stable hot set, drifting hot set, pointer
// chasing, streaming, work front, mixed). It aliases the exp package's
// list, which cmd/sweep also uses, so the three can never drift.
var SweepWorkloads = exp.SweepWorkloadNames

// expConfig returns the standard configuration experiment e runs at.
// Sweeps are bounded to the subset even at full scale (they multiply run
// counts by 30+), as documented in EXPERIMENTS.md.
func expConfig(e Experiment, scale ExperimentScale) exp.Config {
	return exp.ConfigFor(string(e), scale == Full)
}

func firstNonEmpty(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}

type errUnknownExperiment Experiment

func (e errUnknownExperiment) Error() string {
	return "mempod: unknown experiment " + string(e)
}
